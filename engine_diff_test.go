package gsi

import (
	"bytes"
	"testing"
)

// denseSpecs returns every figure spec at small scale with the legacy dense
// scheduling loop forced on each job. Jobs whose System is zero resolve to
// DefaultConfig through withDefaults, so the switch must be applied to the
// resolved config.
func figureSpecsDense(dense bool) []FigureSpec {
	sc := SmallScale()
	specs := []FigureSpec{Figure61Spec(sc), Figure62Spec(sc), Figure63Spec()}
	specs = append(specs, Figure64Specs(sc)...)
	for si := range specs {
		for ji := range specs[si].Sweep.Jobs {
			o := &specs[si].Sweep.Jobs[ji].Options
			*o = o.withDefaults()
			o.System.DenseTicking = dense
		}
	}
	return specs
}

// TestDenseAndQuiescentEnginesByteIdentical is the cross-engine determinism
// contract: for every figure spec, the quiescence-aware scheduling core and
// the dense reference loop must produce byte-identical reports — same
// cycles, same stall counts, same memory statistics, same JSON.
func TestDenseAndQuiescentEnginesByteIdentical(t *testing.T) {
	quiescent, err := RunFigureSpecs(figureSpecsDense(false), SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := RunFigureSpecs(figureSpecsDense(true), SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(quiescent) != len(dense) {
		t.Fatalf("set counts differ: %d vs %d", len(quiescent), len(dense))
	}
	for i := range quiescent {
		qj, err := quiescent[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		dj, err := dense[i].JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(qj, dj) {
			qd, dd := diffLine(qj, dj)
			t.Errorf("figure %s diverges between engines:\n quiescent: %s\n dense:     %s",
				quiescent[i].ID, qd, dd)
		}
	}
}

// diffLine returns the first differing line of two documents.
func diffLine(a, b []byte) (string, string) {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return string(al[i]), string(bl[i])
		}
	}
	return "<prefix>", "<prefix>"
}

// TestEnginesIdenticalWithTimeline pins the bulk idle-advance path: with the
// per-SM timeline enabled (the collector most sensitive to when idle cycles
// are recorded), a 15-SM run whose SMs drain at different times must render
// identically whether idle cycles were observed one at a time (dense) or
// credited as one span at the end (quiescent).
func TestEnginesIdenticalWithTimeline(t *testing.T) {
	w := NewUTSDWith(UTSD{Seed: 0xC0FFEE, Nodes: 120, FrontierMin: 40,
		Blocks: 15, WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	run := func(dense bool) *Report {
		opt := Options{Protocol: DeNovo, Timeline: true}
		opt.System = DefaultConfig()
		opt.System.DenseTicking = dense
		rep, err := Run(opt, w)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	q, d := run(false), run(true)
	if q.Timeline != d.Timeline {
		t.Errorf("timelines diverge:\n--- quiescent ---\n%s\n--- dense ---\n%s", q.Timeline, d.Timeline)
	}
	if q.Cycles != d.Cycles {
		t.Errorf("cycles diverge: %d vs %d", q.Cycles, d.Cycles)
	}
	if q.Counts != d.Counts {
		t.Errorf("counts diverge:\n%+v\nvs\n%+v", q.Counts, d.Counts)
	}
}
