package gsi

import (
	"math"
	"strings"
	"testing"

	"gsi/internal/core"
)

// testScale keeps experiment tests fast while preserving the contention
// and locality patterns the figures depend on.
func testScale() Scale {
	return Scale{UTSNodes: 300, UTSDNodes: 300, FrontierMin: 60, MSHRSizes: []int{32, 256}}
}

func frac(r *Report, k core.StallKind) float64 {
	return float64(r.Counts.Cycles[k]) / float64(r.Counts.Total())
}

// TestFigure61Shape asserts the paper's UTS findings: synchronization
// stalls dominate both protocols, the overall difference is small, and the
// ownership signatures (remote-L1 data stalls, pending-release structural
// stalls) appear in the sub-breakdowns.
func TestFigure61Shape(t *testing.T) {
	fs, err := Figure61(testScale())
	if err != nil {
		t.Fatal(err)
	}
	gpuRep, dnvRep := fs.Reports[0], fs.Reports[1]

	for _, r := range fs.Reports {
		if f := frac(r, core.Sync); f < 0.5 {
			t.Errorf("%s: sync fraction %.2f, want dominant (>= 0.5)", r.Protocol, f)
		}
	}
	ratio := float64(dnvRep.Counts.Total()) / float64(gpuRep.Counts.Total())
	if ratio < 0.6 || ratio > 1.4 {
		t.Errorf("UTS DeNovo/GPU-coherence ratio %.2f outside the near-equal band", ratio)
	}
	// Remote L1 hits exist only under DeNovo (forwarding requires
	// ownership).
	if gpuRep.Counts.MemData[core.WhereRemoteL1] != 0 {
		t.Error("GPU coherence recorded remote-L1 data stalls")
	}
	if dnvRep.Counts.MemData[core.WhereRemoteL1] == 0 {
		t.Error("DeNovo recorded no remote-L1 data stalls in UTS")
	}
	// Pending-release stalls appear for both (single global lock, every
	// unlock flushes).
	for _, r := range fs.Reports {
		if r.Counts.MemStruct[core.StructPendingRelease] == 0 {
			t.Errorf("%s: no pending-release stalls", r.Protocol)
		}
	}
}

// TestFigure62Shape asserts the UTSD findings: DeNovo reduces execution
// time, memory data stalls (driven by the L2-serviced component), and
// memory structural stalls (driven by pending release); the main-memory
// data component does not improve.
func TestFigure62Shape(t *testing.T) {
	fs, err := Figure62(testScale())
	if err != nil {
		t.Fatal(err)
	}
	gpuRep, dnvRep := fs.Reports[0], fs.Reports[1]

	if dnvRep.Counts.Total() >= gpuRep.Counts.Total() {
		t.Errorf("DeNovo UTSD (%d cycles) not faster than GPU coherence (%d)",
			dnvRep.Counts.Total(), gpuRep.Counts.Total())
	}
	gpuStruct := float64(gpuRep.Counts.Cycles[core.MemStructural])
	dnvStruct := float64(dnvRep.Counts.Cycles[core.MemStructural])
	if dnvStruct > 0.7*gpuStruct {
		t.Errorf("memory structural stalls: DeNovo %.0f vs GPU %.0f, want >= 30%% reduction",
			dnvStruct, gpuStruct)
	}
	gpuRel := float64(gpuRep.Counts.MemStruct[core.StructPendingRelease])
	dnvRel := float64(dnvRep.Counts.MemStruct[core.StructPendingRelease])
	if dnvRel > 0.7*gpuRel {
		t.Errorf("pending-release stalls: DeNovo %.0f vs GPU %.0f, want >= 30%% reduction",
			dnvRel, gpuRel)
	}
	gpuL2 := float64(gpuRep.Counts.MemData[core.WhereL2])
	dnvL2 := float64(dnvRep.Counts.MemData[core.WhereL2])
	if dnvL2 > 0.8*gpuL2 {
		t.Errorf("L2-serviced data stalls: DeNovo %.0f vs GPU %.0f, want a reduction",
			dnvL2, gpuL2)
	}
	// "The main memory ... components of memory data stalls are not
	// reduced": allow a generous band but no large improvement.
	gpuMem := float64(gpuRep.Counts.MemData[core.WhereMemory])
	dnvMem := float64(dnvRep.Counts.MemData[core.WhereMemory])
	if dnvMem < 0.5*gpuMem {
		t.Errorf("main-memory data stalls improved too much: DeNovo %.0f vs GPU %.0f",
			dnvMem, gpuMem)
	}
	// Ownership mechanics visible: repeat releases become free.
	if dnvRep.Mem.FlushNoops == 0 {
		t.Error("DeNovo UTSD recorded no free (already-owned) flushes")
	}
}

// TestUTSDReducesExecutionVsUTS asserts the ~90% reduction of section
// 6.1.4 (paper: 91% GPU coherence, 94% DeNovo).
func TestUTSDReducesExecutionVsUTS(t *testing.T) {
	sc := testScale()
	f61, err := Figure61(sc)
	if err != nil {
		t.Fatal(err)
	}
	f62, err := Figure62(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []Protocol{GPUCoherence, DeNovo} {
		uts := f61.Reports[i].Cycles
		utsd := f62.Reports[i].Cycles
		red := 1 - float64(utsd)/float64(uts)
		if red < 0.75 {
			t.Errorf("%s: UTSD reduces execution by %.0f%%, want >= 75%%", p, red*100)
		}
	}
}

// TestFigure63Shape asserts case study 2: both scratchpad+DMA and stash
// reduce "no stall" cycles (fewer data-movement instructions) and increase
// memory structural stalls; pending-DMA stalls appear only under DMA.
func TestFigure63Shape(t *testing.T) {
	fs, err := Figure63()
	if err != nil {
		t.Fatal(err)
	}
	base, dma, stash := fs.Reports[0], fs.Reports[1], fs.Reports[2]

	for _, r := range []*Report{dma, stash} {
		if r.Counts.Cycles[core.NoStall] >= base.Counts.Cycles[core.NoStall] {
			t.Errorf("%s: no-stall cycles %d not below scratchpad's %d",
				r.Workload, r.Counts.Cycles[core.NoStall], base.Counts.Cycles[core.NoStall])
		}
		if r.InstrsIssued >= base.InstrsIssued {
			t.Errorf("%s: instruction count %d not below scratchpad's %d",
				r.Workload, r.InstrsIssued, base.InstrsIssued)
		}
		// The paper reports +67% (DMA) and +34% (stash) structural
		// stalls over the baseline; our substrate reproduces the
		// direction for DMA and near-parity for stash (see
		// EXPERIMENTS.md), so assert the structural share of execution
		// grows rather than exact factors.
		rShare := float64(r.Counts.Cycles[core.MemStructural]) / float64(r.Counts.Total())
		bShare := float64(base.Counts.Cycles[core.MemStructural]) / float64(base.Counts.Total())
		if rShare <= bShare {
			t.Errorf("%s: structural share %.2f not above scratchpad's %.2f",
				r.Workload, rShare, bShare)
		}
	}
	if base.Counts.MemStruct[core.StructPendingDMA] != 0 ||
		stash.Counts.MemStruct[core.StructPendingDMA] != 0 {
		t.Error("pending-DMA stalls outside the DMA configuration")
	}
	if dma.Counts.MemStruct[core.StructPendingDMA] == 0 {
		t.Error("no pending-DMA stalls under scratchpad+DMA")
	}
	// The baseline pays full-MSHR and full-store-buffer stalls from its
	// explicit transfer loops.
	if base.Counts.MemStruct[core.StructMSHRFull] == 0 {
		t.Error("baseline scratchpad shows no MSHR-full stalls at 32 entries")
	}
	if base.Counts.MemStruct[core.StructStoreBufferFull] == 0 {
		t.Error("baseline scratchpad shows no store-buffer-full stalls")
	}
}

// TestFigure64Shape asserts the MSHR sweep: growing the MSHR eliminates
// full-MSHR stalls for the baseline, grows memory data stalls (dependent
// stores), grows pending-DMA stalls for scratchpad+DMA, and improves
// execution time for every configuration.
func TestFigure64Shape(t *testing.T) {
	sets, err := Figure64(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("sets = %d", len(sets))
	}
	small, big := sets[0], sets[1]
	for i := range small.Reports {
		s, b := small.Reports[i], big.Reports[i]
		if b.Counts.Total() > s.Counts.Total() {
			t.Errorf("%s: 256-entry MSHR slower (%d) than 32-entry (%d)",
				s.Workload, b.Counts.Total(), s.Counts.Total())
		}
	}
	// Baseline scratchpad: full-MSHR stalls collapse, data stalls grow.
	sBase, bBase := small.Reports[0], big.Reports[0]
	if bBase.Counts.MemStruct[core.StructMSHRFull] >= sBase.Counts.MemStruct[core.StructMSHRFull]/4 {
		t.Errorf("baseline MSHR-full stalls: 32-entry %d -> 256-entry %d, want near-elimination",
			sBase.Counts.MemStruct[core.StructMSHRFull], bBase.Counts.MemStruct[core.StructMSHRFull])
	}
	if bBase.Counts.Cycles[core.MemData] <= sBase.Counts.Cycles[core.MemData] {
		t.Errorf("baseline data stalls did not grow with MSHR size: %d -> %d",
			sBase.Counts.Cycles[core.MemData], bBase.Counts.Cycles[core.MemData])
	}
	// Scratchpad+DMA: pending-DMA attribution grows as MSHR-full fades.
	sDMA, bDMA := small.Reports[1], big.Reports[1]
	if bDMA.Counts.MemStruct[core.StructPendingDMA] <= sDMA.Counts.MemStruct[core.StructPendingDMA] {
		t.Errorf("pending-DMA stalls did not grow with MSHR size: %d -> %d",
			sDMA.Counts.MemStruct[core.StructPendingDMA], bDMA.Counts.MemStruct[core.StructPendingDMA])
	}
	// Stash: data stalls grow but the configuration stays fastest or
	// close (higher core utilization).
	sStash, bStash := small.Reports[2], big.Reports[2]
	if bStash.Counts.Cycles[core.MemData] <= sStash.Counts.Cycles[core.MemData] {
		t.Errorf("stash data stalls did not grow with MSHR size: %d -> %d",
			sStash.Counts.Cycles[core.MemData], bStash.Counts.Cycles[core.MemData])
	}
}

func TestCalibrationWithinPaperBands(t *testing.T) {
	cal, err := Calibrate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, r LatencyRange, lo, hi uint64) {
		if r.Min < lo || r.Max > hi {
			t.Errorf("%s latency %s outside band %d-%d", name, r, lo, hi)
		}
	}
	// Idle-system probes must land inside the paper's (loaded) ranges.
	check("L1", cal.L1Hit, 1, 1)
	check("L2", cal.L2Hit, 29, 61)
	check("remote L1", cal.RemoteL1, 35, 83)
	check("memory", cal.Memory, 197, 261)
	if cal.RemoteL1.Min <= cal.L2Hit.Min {
		t.Error("remote L1 not slower than L2 (forwarding adds a hop)")
	}
	if cal.Memory.Min <= cal.L2Hit.Max {
		t.Error("memory not slower than every L2 hit")
	}
}

func TestRunDeterminism(t *testing.T) {
	opts := Options{Protocol: DeNovo}
	w := UTSD{Seed: 1, Nodes: 120, FrontierMin: 40, Blocks: 15, WarpsPerBlock: 4,
		Work: 4, FMAs: 2, LQCap: 128}
	r1, err := Run(opts, NewUTSDWith(w))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(opts, NewUTSDWith(w))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Counts != r2.Counts {
		t.Fatalf("non-deterministic: %d/%d cycles", r1.Cycles, r2.Cycles)
	}
}

func TestAblationSFIFO(t *testing.T) {
	// The paper's section 6.1.4 suggestion: an S-FIFO keeps memory
	// requests issuing during releases, removing pending-release stalls.
	w := NewUTSDWith(UTSD{Seed: 1, Nodes: 200, FrontierMin: 60, Blocks: 15,
		WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	baseRep, err := Run(Options{Protocol: GPUCoherence}, w)
	if err != nil {
		t.Fatal(err)
	}
	sfifoRep, err := Run(Options{Protocol: GPUCoherence, SFIFO: true}, w)
	if err != nil {
		t.Fatal(err)
	}
	baseRel := baseRep.Counts.MemStruct[core.StructPendingRelease]
	sfifoRel := sfifoRep.Counts.MemStruct[core.StructPendingRelease]
	if sfifoRel >= baseRel {
		t.Errorf("S-FIFO pending-release stalls %d not below baseline %d", sfifoRel, baseRel)
	}
}

func TestAblationStrongCycle(t *testing.T) {
	w := NewImplicit(Scratchpad)
	sys := implicitSystem(32)
	weak, err := Run(Options{System: sys, Protocol: DeNovo}, w)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Run(Options{System: sys, Protocol: DeNovo, StrongCycle: true}, w)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Cycles != strong.Cycles {
		t.Fatalf("classification changed timing: %d vs %d", weak.Cycles, strong.Cycles)
	}
	if weak.Counts == strong.Counts {
		t.Error("strong cycle priority produced an identical breakdown")
	}
	if weak.Counts.Total() != strong.Counts.Total() {
		t.Error("cycle totals differ between classifiers")
	}
}

func TestAblationEagerAttribution(t *testing.T) {
	// UTSD exercises every service level (L1 reuse, L2 queue lines,
	// cold metadata from memory), which is exactly what the deferred
	// scheme can distinguish and the eager one cannot.
	w := NewUTSDWith(UTSD{Seed: 1, Nodes: 200, FrontierMin: 60, Blocks: 15,
		WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	deferred, err := Run(Options{Protocol: GPUCoherence}, w)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Run(Options{Protocol: GPUCoherence, EagerAttribution: true}, w)
	if err != nil {
		t.Fatal(err)
	}
	// Eager attribution dumps everything on main memory; the deferred
	// scheme distinguishes levels.
	var eagerOther uint64
	for _, wh := range []core.DataWhere{core.WhereL1, core.WhereL1Coalescing, core.WhereL2, core.WhereRemoteL1} {
		eagerOther += eager.Counts.MemData[wh]
	}
	if eagerOther != 0 {
		t.Errorf("eager attribution produced %d non-memory cycles", eagerOther)
	}
	var defOther uint64
	for _, wh := range []core.DataWhere{core.WhereL1, core.WhereL1Coalescing, core.WhereL2} {
		defOther += deferred.Counts.MemData[wh]
	}
	if defOther == 0 {
		t.Error("deferred attribution distinguished no levels")
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.MSHREntries = 0
	if _, err := Run(Options{System: bad}, NewImplicit(Scratchpad)); err == nil {
		t.Error("invalid system config accepted")
	}
}

func TestReportBreakdownConsistency(t *testing.T) {
	rep, err := Run(Options{System: implicitSystem(32), Protocol: DeNovo}, NewImplicit(Stash))
	if err != nil {
		t.Fatal(err)
	}
	exec := rep.ExecBreakdown()
	if got, want := exec.Total(), float64(rep.Counts.Total()); math.Abs(got-want) > 0.5 {
		t.Errorf("exec breakdown total %v != counts total %v", got, want)
	}
	if got, want := rep.MemDataBreakdown().Total(), float64(rep.Counts.Cycles[core.MemData]); math.Abs(got-want) > 0.5 {
		t.Errorf("data sub-breakdown %v != MemData cycles %v", got, want)
	}
	if got, want := rep.MemStructBreakdown().Total(), float64(rep.Counts.Cycles[core.MemStructural]); math.Abs(got-want) > 0.5 {
		t.Errorf("structural sub-breakdown %v != MemStructural cycles %v", got, want)
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}

// TestAblationOwnedAtomics checks the paper's section 6.1.4 hardware
// suggestion: owned atomics make repeat synchronization to the same line
// local, cutting sync stalls in the lock-bound UTSD.
func TestAblationOwnedAtomics(t *testing.T) {
	w := NewUTSDWith(UTSD{Seed: 1, Nodes: 200, FrontierMin: 60, Blocks: 15,
		WarpsPerBlock: 8, Work: 8, FMAs: 4, LQCap: 128})
	base, err := Run(Options{Protocol: DeNovo}, w)
	if err != nil {
		t.Fatal(err)
	}
	owned, err := Run(Options{Protocol: DeNovo, OwnedAtomics: true}, w)
	if err != nil {
		t.Fatal(err)
	}
	if owned.Mem.LocalAtomics == 0 {
		t.Fatal("owned atomics never served locally")
	}
	if owned.Counts.Total() >= base.Counts.Total() {
		t.Errorf("owned atomics did not improve execution: %d vs %d",
			owned.Counts.Total(), base.Counts.Total())
	}
	if owned.Counts.Cycles[core.Sync] >= base.Counts.Cycles[core.Sync] {
		t.Errorf("owned atomics did not reduce sync stalls: %d vs %d",
			owned.Counts.Cycles[core.Sync], base.Counts.Cycles[core.Sync])
	}
}

func TestTimelineOption(t *testing.T) {
	rep, err := Run(Options{System: implicitSystem(32), Protocol: DeNovo, Timeline: true},
		NewImplicit(ScratchpadDMA))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeline == "" {
		t.Fatal("no timeline rendered")
	}
	// The DMA phase must be visible as structural-stall columns.
	if !strings.Contains(rep.Timeline, "*") {
		t.Errorf("timeline missing the structural (pending DMA / MSHR) phase:\n%s", rep.Timeline)
	}
}

func TestReportPerSMAndComputeBreakdowns(t *testing.T) {
	rep, err := Run(Options{Protocol: DeNovo},
		NewUTSDWith(UTSD{Seed: 2, Nodes: 150, FrontierMin: 40, Blocks: 15,
			WarpsPerBlock: 4, Work: 8, FMAs: 2, LQCap: 128}))
	if err != nil {
		t.Fatal(err)
	}
	// Per-SM profiles sum to the aggregate.
	var sum Counts
	for i := range rep.PerSM {
		sum.Add(&rep.PerSM[i])
	}
	if sum != rep.Counts {
		t.Fatal("per-SM counts do not sum to the aggregate")
	}
	// Compute sub-breakdowns are consistent with the top-level kinds.
	if got, want := rep.CompDataBreakdown().Total(), float64(rep.Counts.Cycles[CompData]); got != want {
		t.Fatalf("compute data sub-breakdown %v != %v", got, want)
	}
	if got, want := rep.CompStructBreakdown().Total(), float64(rep.Counts.Cycles[CompStructural]); got != want {
		t.Fatalf("compute structural sub-breakdown %v != %v", got, want)
	}
	// The SFU hash chain in UTSD node processing must surface
	// SFU-attributed compute stalls.
	if rep.Counts.CompData[SFUUnit] == 0 && rep.Counts.Cycles[CompData] > 0 {
		t.Error("compute data stalls present but none attributed to the SFU")
	}
}
