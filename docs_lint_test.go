package gsi

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseDirFiles parses every non-test Go file of one directory with
// comments attached.
func parseDirFiles(t *testing.T, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	return files
}

// goPackageDirs returns every directory in the repository holding a
// non-test Go package (the public package, internal packages, commands,
// and examples).
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestGodocCoverage is the missing-doc lint gate (the repo-local
// equivalent of revive's exported rule, with no dependency): every
// package must carry a package-level doc comment, and every exported
// identifier of the public gsi package — types, functions, methods on
// exported receivers, consts and vars (group docs count) — must carry a
// doc comment. CI runs this through go test, so doc coverage cannot
// regress silently.
func TestGodocCoverage(t *testing.T) {
	for _, dir := range goPackageDirs(t) {
		files := parseDirFiles(t, dir)
		if len(files) == 0 {
			continue
		}
		hasDoc := false
		for _, f := range files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if !hasDoc {
			t.Errorf("package %s (%s) has no package-level doc comment", files[0].Name.Name, dir)
		}
	}

	var missing []string
	for _, f := range parseDirFiles(t, ".") {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !receiverExported(d) {
					continue
				}
				if d.Doc == nil {
					missing = append(missing, fmt.Sprintf("func %s", funcLabel(d)))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							missing = append(missing, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						if d.Doc != nil || s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								missing = append(missing, "value "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("exported identifier missing a doc comment in package gsi: %s", m)
	}
}

// receiverExported reports whether a method's receiver type is exported
// (functions count as exported receivers).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// funcLabel renders "Recv.Name" for methods, "Name" for functions.
func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return fmt.Sprintf("(%s).%s", exprString(d.Recv.List[0].Type), d.Name.Name)
}

// exprString renders the small subset of receiver type expressions used
// in this package.
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return "*" + exprString(t.X)
	case *ast.Ident:
		return t.Name
	}
	return fmt.Sprintf("%T", e)
}
